// Command apollo-serve is the checkpoint-streamed evaluation service: it
// loads internal/ckpt snapshots through the weights-only read path and
// answers perplexity, option-logprob, zero-shot and fine-tune queries over
// HTTP/JSON without re-running training.
//
// Usage:
//
//	apollo-serve -size 60M -seed 1 -addr :8080 run.ckpt          # serve one snapshot
//	apollo-serve -size 60M -addr :8080 a.ckpt b.ckpt             # several (LRU-cached)
//	apollo-serve -size 60M -seed 1 -offline run.ckpt             # print the exact offline
//	                                                             # train.Validate loss, no server
//
// -size and -seed must match the apollo-pretrain flags that produced the
// checkpoint: the architecture (head count is not recoverable from the
// weight shapes) and the corpus seeds (corpus = seed+17, as in
// apollo-pretrain) — then a served perplexity query is bit-identical to the
// trainer's own validation loss. Checkpoints given on the command line are
// preloaded; any other path can be queried by naming it in a request's
// "checkpoint" field. Every request re-stats its file, so pointing a query
// at a live training run's -save path serves the latest periodic snapshot
// (hot reload; in-flight queries finish on the old weights).
//
// -offline prints the loss train.Validate computes on the restored
// snapshot, as a shortest-round-trip decimal on one line — the reference
// value CI compares served loss_text responses against, bit for bit.
//
// Production traffic: scoring responses are cached (-cache-entries, LRU,
// invalidated by hot reload), executor queues are bounded (-max-queue) and
// load shedding (-shed-ms) answers 429 with Retry-After once the queue-wait
// p95 over -shed-window-ms crosses the threshold; /readyz reports
// backpressure while shedding. -drain-wait holds the listener open after a
// shutdown signal flips /readyz to 503, giving load balancers a
// deregistration window. Bodies over -max-body-bytes answer 413.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apollo/internal/bench"
	"apollo/internal/ckpt"
	"apollo/internal/nn"
	"apollo/internal/obs"
	"apollo/internal/obs/memprof"
	rt "apollo/internal/runtime"
	"apollo/internal/serve"
	"apollo/internal/tensor"
	"apollo/internal/train"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		size      = flag.String("size", "60M", "proxy size the checkpoints were trained at: 60M 130M 350M 1B 7B")
		seed      = flag.Uint64("seed", 1, "run seed of the training run (corpus = seed+17)")
		maxModels = flag.Int("max-models", 4, "snapshots resident at once (LRU beyond)")
		maxBatch  = flag.Int("max-batch", 8, "scoring sequences coalesced per forward")
		cacheEnt  = flag.Int("cache-entries", 4096, "response-cache entries (LRU beyond; 0 disables caching)")
		maxQueue  = flag.Int("max-queue", 256, "executor queue bound per snapshot; over it queries answer 429 (0 = unbounded)")
		shedMS    = flag.Float64("shed-ms", 0, "shed new compute with 429 when queue-wait p95 exceeds this many ms (0 disables)")
		shedWinMS = flag.Float64("shed-window-ms", 1000, "rolling window feeding the shed p95")
		maxBody   = flag.Int64("max-body-bytes", 1<<20, "request bodies over this answer 413")
		drainWait = flag.Duration("drain-wait", 0, "pause between flipping /readyz to 503 and closing the listener, so load balancers deregister first")
		workers   = flag.Int("workers", 0, "tensor worker pool size (0 = GOMAXPROCS)")
		offline   = flag.Bool("offline", false, "print the exact offline validation loss for a checkpoint and exit")
		batches   = flag.Int("batches", 4, "validation batches (offline mode)")
		batch     = flag.Int("batch", 0, "validation batch size (offline mode; 0 = proxy default)")
		seq       = flag.Int("seq", 0, "validation sequence length (offline mode; 0 = proxy default)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		traceOut  = flag.String("trace", "", "append per-request trace spans to this JSONL file")
		memOut    = flag.String("mem-timeline", "", "append memory-timeline samples to this JSONL file")
		memEvery  = flag.Duration("mem-every", 10*time.Second, "wall-clock stride of the background memory sampler")
		memHW     = flag.Int64("mem-highwater", 0, "heap high-water mark in bytes: crossing it captures a heap profile into -mem-profile-dir (0 disables)")
		memProf   = flag.String("mem-profile-dir", ".", "directory for high-water heap profiles")
	)
	flag.Parse()

	if *workers > 0 {
		rt.SetWorkers(*workers)
	}
	proxy, err := bench.ProxyByName(*size)
	if err != nil {
		fail(err)
	}
	corpus, err := bench.NewCorpus(*seed + 17)
	if err != nil {
		fail(err)
	}

	if *offline {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("-offline needs exactly one checkpoint path"))
		}
		b, t := *batch, *seq
		if b == 0 {
			b = proxy.Batch
		}
		if t == 0 {
			t = proxy.Seq
		}
		snap, err := ckpt.LoadModelFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		model := nn.NewModel(proxy.Model, tensor.NewRNG(1))
		if err := snap.InstallWeights(model.Params().List()); err != nil {
			fail(err)
		}
		loss := train.Validate(model, corpus, *batches, b, t)
		fmt.Println(serve.ExactFloat(loss))
		return
	}

	metrics := obs.NewRegistry()
	rt.InstrumentDefault(metrics)
	obs.InstrumentWriteErrors(metrics)
	var tracer *obs.Tracer
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		// Trace flush failures must surface: count the close error into
		// apollo_obs_write_errors_total instead of dropping it.
		defer func() { obs.CountWriteError(f.Close()) }()
		tracer = obs.NewTracer(f)
	}

	// Live memory accounting: component gauges on /metrics always; the JSONL
	// timeline and heap flight recorder when asked for. The registry wires in
	// its serve_snapshots / batcher_buffers components via Config.MemProf.
	memCfg := memprof.Config{
		Registry:   metrics,
		HighWater:  *memHW,
		ProfileDir: *memProf,
	}
	if *memOut != "" {
		memSink, err := os.OpenFile(*memOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer func() { obs.CountWriteError(memSink.Close()) }()
		memCfg.Out = memSink // nil Out keeps gauges live without a timeline
	}
	mp := memprof.New(memCfg)
	if *memEvery > 0 {
		stop := mp.StartSampler(*memEvery)
		defer stop()
	}

	// Flag semantics use 0 for "off"; the Config uses 0 for "default", so
	// off maps to the negative sentinel.
	cacheEntries, queueBound := *cacheEnt, *maxQueue
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	if queueBound == 0 {
		queueBound = -1
	}
	cfg := serve.Config{
		Model: proxy.Model, Corpus: corpus,
		MaxModels: *maxModels, MaxBatch: *maxBatch,
		CacheEntries: cacheEntries, MaxQueue: queueBound,
		ShedThreshold: time.Duration(*shedMS * float64(time.Millisecond)),
		ShedWindow:    time.Duration(*shedWinMS * float64(time.Millisecond)),
		MaxBodyBytes:  *maxBody,
		Metrics:       metrics, Tracer: tracer, Pprof: *pprofOn,
		MemProf: mp,
	}
	reg, err := serve.NewRegistry(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("apollo-serve: proxy-%s architecture, %d workers, up to %d resident snapshots, listening on %s\n",
		proxy.Name, rt.Workers(), *maxModels, *addr)
	for _, p := range flag.Args() {
		fmt.Printf("  preloading %s\n", p)
		if _, err := reg.Acquire(p); err != nil {
			fail(err)
		}
	}

	// Serve until the listener fails or a SIGINT/SIGTERM arrives; on signal,
	// flip /readyz to 503 so load balancers stop routing here, then stop
	// accepting and drain in-flight queries before exiting.
	api := serve.NewServer(reg)
	srv := serve.NewHTTPServer(*addr, api.Handler())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
		stop()
		api.SetDraining(true)
		fmt.Println("apollo-serve: shutdown signal, draining in-flight queries")
		// Keep the listener open while /readyz answers 503 so load
		// balancers deregister before connections start being refused.
		if *drainWait > 0 {
			time.Sleep(*drainWait)
		}
		drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(drain); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
