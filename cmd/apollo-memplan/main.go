// Command apollo-memplan prints the analytic training-memory breakdown for
// any paper-scale model and optimizer, and checks device feasibility.
//
// Usage:
//
//	apollo-memplan -model 7B -method APOLLO-Mini -int8 -layerwise -ckpt
//	apollo-memplan -model 13B -method AdamW -seq 256
//	apollo-memplan -model 7B -method AdamW -zero 8   # ZeRO-sharded states
package main

import (
	"flag"
	"fmt"
	"os"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
)

func main() {
	var (
		model     = flag.String("model", "7B", "60M 130M 350M 1B 7B 13B")
		method    = flag.String("method", "APOLLO", "memory-model method name")
		rank      = flag.Int("rank", 0, "low-rank dimension (0 = hidden/4)")
		seq       = flag.Int("seq", 256, "sequence length")
		micro     = flag.Int("micro", 1, "micro-batch size")
		int8W     = flag.Bool("int8", false, "INT8 group-quantized weights")
		layerwise = flag.Bool("layerwise", false, "layer-wise gradient updates")
		ckpt      = flag.Bool("ckpt", false, "full activation checkpointing")
		zeroWorld = flag.Int("zero", 0, "ZeRO-shard optimizer states across N replicas (0 = unsharded)")
	)
	flag.Parse()

	cfg, err := memmodel.ConfigByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := memmodel.MethodByName(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan := memmodel.Plan{
		Config: cfg, Method: m, Rank: *rank,
		SeqLen: *seq, MicroBatch: *micro,
		Int8Weights: *int8W, LayerWiseGrad: *layerwise, ActivationCkpt: *ckpt,
		ZeroWorld: *zeroWorld,
	}
	b := memmodel.Compute(plan)
	fmt.Printf("%s + %s (rank %d), seq %d, micro-batch %d\n", cfg.Name, m.Name, effRank(cfg, *rank), *seq, *micro)
	if *zeroWorld > 1 {
		fmt.Printf("  optimizer states ZeRO-sharded across %d replicas (per-replica plan)\n", *zeroWorld)
	}
	fmt.Printf("  weights      %8.2f GiB\n", memmodel.GiB(b.Weights))
	fmt.Printf("  gradients    %8.2f GiB\n", memmodel.GiB(b.Gradients))
	fmt.Printf("  optim states %8.2f GiB\n", memmodel.GiB(b.States))
	fmt.Printf("  activations  %8.2f GiB\n", memmodel.GiB(b.Activations))
	fmt.Printf("  total        %8.2f GiB\n", memmodel.GiB(b.Total()))
	// Predicted on-disk checkpoint size (internal/ckpt format): float32
	// weights + the method's full serialized optimizer state. The canonical
	// gather makes this world-independent — a -zero N run writes the same
	// file an unsharded run would.
	ckptBytes := memmodel.CheckpointBytesFor(cfg, m, *rank)
	note := ""
	if *zeroWorld > 1 {
		note = " (canonical layout — same file at any -zero world)"
	}
	fmt.Printf("  checkpoint   %8.2f GiB on disk%s\n\n", memmodel.GiB(ckptBytes), note)

	for _, dev := range []cluster.Device{cluster.A100_80G(), cluster.RTX4090()} {
		verdict := "fits"
		if b.Total() > dev.MemBytes {
			verdict = "OOM"
		}
		fmt.Printf("  %-14s (%.0f GB): %s\n", dev.Name, dev.MemBytes/1e9, verdict)
	}
}

func effRank(cfg memmodel.LLaMAConfig, rank int) int {
	if rank == 0 {
		return cfg.DefaultRank()
	}
	return rank
}
