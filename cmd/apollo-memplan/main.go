// Command apollo-memplan prints the analytic training-memory breakdown for
// any paper-scale model and optimizer, and checks device feasibility.
//
// Usage:
//
//	apollo-memplan -model 7B -method APOLLO-Mini -int8 -layerwise -ckpt
//	apollo-memplan -model 13B -method AdamW -seq 256
//	apollo-memplan -model 7B -method AdamW -zero 8   # ZeRO-sharded states
//	apollo-memplan -model 60M -method APOLLO -run-dir runs/<id>
//
// -run-dir joins a run's recorded memory timeline (mem.jsonl, written by
// apollo-pretrain) against the plan: recorded component peaks line up next
// to the analytic rows, and components the run predicted for themselves
// (via memmodel.StateElems over the live shapes) show their measured-vs-
// predicted delta. Note the scales differ by design — the plan prices the
// paper-scale model, while runs record the shrunken proxy — so the joined
// view answers "did the accounting hold" (the delta column), not "did the
// proxy reach paper size".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"apollo/internal/cluster"
	"apollo/internal/memmodel"
	"apollo/internal/obs/runlog"
)

func main() {
	var (
		model     = flag.String("model", "7B", "60M 130M 350M 1B 7B 13B")
		method    = flag.String("method", "APOLLO", "memory-model method name")
		rank      = flag.Int("rank", 0, "low-rank dimension (0 = hidden/4)")
		seq       = flag.Int("seq", 256, "sequence length")
		micro     = flag.Int("micro", 1, "micro-batch size")
		int8W     = flag.Bool("int8", false, "INT8 group-quantized weights")
		layerwise = flag.Bool("layerwise", false, "layer-wise gradient updates")
		ckpt      = flag.Bool("ckpt", false, "full activation checkpointing")
		zeroWorld = flag.Int("zero", 0, "ZeRO-shard optimizer states across N replicas (0 = unsharded)")
		runDir    = flag.String("run-dir", "", "join this run directory's recorded mem.jsonl peaks against the plan")
	)
	flag.Parse()

	cfg, err := memmodel.ConfigByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := memmodel.MethodByName(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan := memmodel.Plan{
		Config: cfg, Method: m, Rank: *rank,
		SeqLen: *seq, MicroBatch: *micro,
		Int8Weights: *int8W, LayerWiseGrad: *layerwise, ActivationCkpt: *ckpt,
		ZeroWorld: *zeroWorld,
	}
	b := memmodel.Compute(plan)
	fmt.Printf("%s + %s (rank %d), seq %d, micro-batch %d\n", cfg.Name, m.Name, effRank(cfg, *rank), *seq, *micro)
	if *zeroWorld > 1 {
		fmt.Printf("  optimizer states ZeRO-sharded across %d replicas (per-replica plan)\n", *zeroWorld)
	}
	fmt.Printf("  weights      %8.2f GiB\n", memmodel.GiB(b.Weights))
	fmt.Printf("  gradients    %8.2f GiB\n", memmodel.GiB(b.Gradients))
	fmt.Printf("  optim states %8.2f GiB\n", memmodel.GiB(b.States))
	fmt.Printf("  activations  %8.2f GiB\n", memmodel.GiB(b.Activations))
	fmt.Printf("  total        %8.2f GiB\n", memmodel.GiB(b.Total()))
	// Predicted on-disk checkpoint size (internal/ckpt format): float32
	// weights + the method's full serialized optimizer state. The canonical
	// gather makes this world-independent — a -zero N run writes the same
	// file an unsharded run would.
	ckptBytes := memmodel.CheckpointBytesFor(cfg, m, *rank)
	note := ""
	if *zeroWorld > 1 {
		note = " (canonical layout — same file at any -zero world)"
	}
	fmt.Printf("  checkpoint   %8.2f GiB on disk%s\n\n", memmodel.GiB(ckptBytes), note)

	for _, dev := range []cluster.Device{cluster.A100_80G(), cluster.RTX4090()} {
		verdict := "fits"
		if b.Total() > dev.MemBytes {
			verdict = "OOM"
		}
		fmt.Printf("  %-14s (%.0f GB): %s\n", dev.Name, dev.MemBytes/1e9, verdict)
	}

	if *runDir != "" {
		if err := joinRun(*runDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// joinRun prints the recorded side of the predicted-vs-actual join: the run
// directory's mem.jsonl component peaks, each with the analytic prediction
// the run recorded for itself (if any) and the measured-vs-predicted delta.
func joinRun(dir string) error {
	rd, err := runlog.LoadDir(dir)
	if err != nil {
		return err
	}
	if len(rd.Mem) == 0 {
		return fmt.Errorf("%s has no memory timeline (%s) — rerun apollo-pretrain with a run ledger", dir, runlog.MemFile)
	}
	type peakInfo struct {
		bytes     int64
		predicted float64
	}
	peaks := map[string]peakInfo{}
	for _, s := range rd.Mem {
		for comp, v := range s.Components {
			p := peaks[comp]
			if v >= p.bytes {
				p.bytes = v
				if pred, ok := s.Predicted[comp]; ok {
					p.predicted = pred
				}
			}
			peaks[comp] = p
		}
	}
	names := make([]string, 0, len(peaks))
	for comp := range peaks {
		names = append(names, comp)
	}
	sort.Strings(names)

	fmt.Printf("\nrecorded run %s (%s, %d samples):\n", rd.Manifest.ID, rd.Manifest.Optimizer, len(rd.Mem))
	for _, comp := range names {
		p := peaks[comp]
		line := fmt.Sprintf("  %-24s %10.4f MiB peak", comp, float64(p.bytes)/(1<<20))
		if p.predicted > 0 {
			line += fmt.Sprintf("  predicted %10.4f MiB  delta %+.2f%%",
				p.predicted/(1<<20), 100*(float64(p.bytes)-p.predicted)/p.predicted)
		}
		fmt.Println(line)
	}
	if peak, ok := rd.MemPeak(); ok {
		fmt.Printf("  %-24s %10.4f MiB peak (step %d)\n", "ledger total", float64(peak.TotalBytes)/(1<<20), peak.Step)
	}
	return nil
}

func effRank(cfg memmodel.LLaMAConfig, rank int) int {
	if rank == 0 {
		return cfg.DefaultRank()
	}
	return rank
}
