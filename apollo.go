// Package apollo is the public facade of this reproduction of
// "APOLLO: SGD-like Memory, AdamW-level Performance" (MLSys 2025).
//
// It re-exports the pieces a downstream user needs to train a model with
// APOLLO in a few lines:
//
//	model := apollo.NewModel(apollo.ModelConfig{Vocab: 256, Dim: 64, Hidden: 176, Heads: 4, Layers: 4, MaxSeq: 128}, 1)
//	opt := apollo.NewMini(apollo.Hyper{LR: 0.01})
//	... compute gradients ...
//	opt.Step(model.Params().List())
//
// The full subsystem packages live under internal/ (tensor math, the
// transformer with manual backprop, the optimizer zoo, the synthetic corpus,
// the memory/throughput models and the experiment harness); this package is
// the stable surface.
package apollo

import (
	"apollo/internal/ckpt"
	"apollo/internal/core"
	"apollo/internal/data"
	"apollo/internal/linalg"
	"apollo/internal/nn"
	"apollo/internal/optim"
	rt "apollo/internal/runtime"
	"apollo/internal/serve"
	"apollo/internal/tensor"
	"apollo/internal/train"
	"apollo/internal/zero"
)

// Re-exported model types.
type (
	// ModelConfig describes a LLaMA-style decoder.
	ModelConfig = nn.Config
	// Model is the decoder-only transformer with manual backprop.
	Model = nn.Model
	// Param is one trainable tensor with its gradient.
	Param = nn.Param
	// Matrix is the dense float32 matrix used throughout.
	Matrix = tensor.Matrix
	// RNG is the deterministic random generator.
	RNG = tensor.RNG
)

// Re-exported optimizer types.
type (
	// Hyper carries learning rate, betas, epsilon and weight decay.
	Hyper = optim.Hyper
	// Optimizer is the common optimizer interface.
	Optimizer = optim.Optimizer
	// Config parameterizes the APOLLO optimizer (Algorithm 1).
	Config = core.Config
	// APOLLO is the paper's optimizer.
	APOLLO = core.APOLLO
	// Granularity selects channel- vs tensor-wise scaling.
	Granularity = core.Granularity
)

// Granularity values.
const (
	Channel = core.Channel
	Tensor  = core.Tensor
)

// Projection kinds for Config.Projection.
const (
	RandomProjection = linalg.RandomProjection
	SVDProjection    = linalg.SVDProjection
)

// NewModel builds and initializes a model from cfg with the given seed.
func NewModel(cfg ModelConfig, seed uint64) *Model {
	return nn.NewModel(cfg, tensor.NewRNG(seed))
}

// New constructs an APOLLO optimizer (channel-wise scaling, random
// projection by default).
func New(h Hyper, cfg Config) *APOLLO { return core.New(h, cfg) }

// NewMini constructs APOLLO-Mini: rank-1 tensor-wise scaling with α = √128,
// SGD-like memory.
func NewMini(h Hyper) *APOLLO { return core.NewMini(h) }

// NewAdamW constructs the AdamW baseline.
func NewAdamW(h Hyper) Optimizer { return optim.NewAdamW(h) }

// NewSGD constructs SGD with optional momentum.
func NewSGD(h Hyper, momentum float64) Optimizer { return optim.NewSGD(h, momentum) }

// Training helpers.
type (
	// Corpus yields synthetic training/validation batches.
	Corpus = data.Corpus
	// PretrainConfig controls the pre-training loop.
	PretrainConfig = train.PretrainConfig
	// Result summarizes a training run.
	Result = train.Result
	// Schedule maps step → learning rate.
	Schedule = optim.Schedule
)

// NewCorpus builds the default synthetic corpus with the given vocabulary
// size and seeds.
func NewCorpus(vocab int, trainSeed, valSeed uint64) (*Corpus, error) {
	cfg := data.DefaultSourceConfig()
	cfg.Vocab = vocab
	src, err := data.NewSource(cfg)
	if err != nil {
		return nil, err
	}
	return data.NewCorpus(src, trainSeed, valSeed), nil
}

// Pretrain runs the standard pre-training loop.
func Pretrain(m *Model, opt Optimizer, corpus *Corpus, cfg PretrainConfig) Result {
	return train.Pretrain(m, opt, corpus, cfg)
}

// DPConfig controls data-parallel pre-training.
type DPConfig = train.DPConfig

// DPPretrain runs the data-parallel pre-training loop: the global batch is
// sharded across cfg.Replicas model replicas running concurrently, with an
// exact all-reduce before each optimizer step. Results are bit-identical
// for every replica count; see internal/train/dp.go for the contract.
func DPPretrain(m *Model, opt Optimizer, corpus *Corpus, cfg DPConfig) Result {
	return train.DPPretrain(m, opt, corpus, cfg)
}

// ZeRO is a ZeRO-style sharded-state wrapper around any optimizer: the
// parameter list is partitioned into N deterministic, state-balanced owner
// shards and each shard runs its own inner optimizer instance.
type ZeRO = zero.Sharded

// NewZeRO wraps an optimizer constructor in ZeRO-style state sharding
// across the given replica count. Used with DPPretrain at the same replica
// count, training stays bit-identical to the unsharded single-replica run
// while each replica holds only ~1/N of the optimizer state (see
// internal/zero for the determinism contract; Result.ReplicaStateBytes
// reports the measured per-replica footprint). The wrapper is also a valid
// drop-in Optimizer for the fused loop.
func NewZeRO(build func() Optimizer, replicas int) *ZeRO {
	return zero.NewSharded(build, replicas)
}

// Checkpoint is a decoded bit-exact training snapshot (internal/ckpt): model
// weights, step/LR counters, the data-stream cursor and the optimizer's
// complete persistent state in a canonical, ZeRO-world-independent layout.
type Checkpoint = ckpt.State

// SaveCheckpoint snapshots a training run after `step` completed steps and
// writes it atomically to path. The optimizer must support checkpointing
// (every optimizer in this zoo does); a ZeRO wrapper gathers its shard-owned
// state into the canonical layout first.
func SaveCheckpoint(path string, step int, m *Model, opt Optimizer, corpus *Corpus) error {
	st, err := ckpt.Capture(step, m.Params().List(), opt, corpus)
	if err != nil {
		return err
	}
	return ckpt.SaveFile(path, st)
}

// LoadCheckpoint reads and fully CRC-verifies a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) { return ckpt.LoadFile(path) }

// RestoreCheckpoint installs a snapshot into live objects. Resuming with
// PretrainConfig.StartStep = st.Step then reproduces the uninterrupted run
// float-for-float; the optimizer may be wrapped in a different ZeRO world
// size than the one that saved (elastic resharding).
func RestoreCheckpoint(st *Checkpoint, m *Model, opt Optimizer, corpus *Corpus) error {
	return ckpt.Restore(st, m.Params().List(), opt, corpus)
}

// Snapshot is the weights-only view of a checkpoint (ckpt.ModelSnapshot):
// identity, parameter table and weight matrices — no optimizer state, no
// data cursor. Opening one costs model-weight memory (memmodel.ServeBytes),
// not the training footprint a full Checkpoint decode materializes.
type Snapshot = ckpt.ModelSnapshot

// OpenSnapshot reads the weights-only view of a checkpoint file: every
// section CRC is verified, but the optimizer sections are never decoded.
// Snapshot.InstallWeights restores the weights into a live model.
func OpenSnapshot(path string) (*Snapshot, error) { return ckpt.LoadModelFile(path) }

// ServeConfig parameterizes the checkpoint-streamed evaluation service
// (internal/serve): the served architecture, the validation corpus, and the
// LRU/batching knobs.
type ServeConfig = serve.Config

// EvalRegistry is the evaluation service's snapshot registry: path → open
// model with LRU caching and hot reload on file change.
type EvalRegistry = serve.Registry

// NewEvalRegistry builds a snapshot registry for one served architecture.
func NewEvalRegistry(cfg ServeConfig) (*EvalRegistry, error) { return serve.NewRegistry(cfg) }

// Serve runs the HTTP/JSON evaluation service on addr, preloading the given
// checkpoints: perplexity, option-logprob, zero-shot and fine-tune queries
// against any internal/ckpt snapshot, without retraining. A served
// perplexity query is bit-identical to train.Validate on the restored
// snapshot at any concurrency; see internal/serve for the contract.
func Serve(addr string, cfg ServeConfig, checkpoints ...string) error {
	return serve.ListenAndServe(addr, cfg, checkpoints)
}

// SetWorkers resizes the shared tensor worker pool (default GOMAXPROCS).
// Kernels are deterministic at any pool size, so this is a pure speed knob.
func SetWorkers(n int) { rt.SetWorkers(n) }

// Workers returns the shared worker pool's parallel width.
func Workers() int { return rt.Workers() }

// WarmupCosine returns the paper's pre-training schedule (10% linear warmup,
// cosine decay to 10% of peak).
func WarmupCosine(peak float64, totalSteps int) Schedule {
	return optim.NewWarmupCosine(peak, totalSteps)
}
